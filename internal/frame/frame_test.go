package frame

import (
	"testing"
	"testing/quick"
)

func TestFrameSizes(t *testing.T) {
	cases := []struct {
		f    *Frame
		want int
	}{
		{NewAck(0, 1), AckSize},
		{NewPSPoll(3, 1), PSPollSize},
		{&Frame{Kind: RTS}, RTSSize},
		{&Frame{Kind: CTS}, CTSSize},
		{NewData(0, 1, 0, 1500), MACHeader + 1500},
		{NewData(0, 1, 0, 0), MACHeader},
		{NewBeacon(nil), BeaconBase},
	}
	for i, c := range cases {
		if got := c.f.Size(); got != c.want {
			t.Errorf("case %d (%v): Size() = %d, want %d", i, c.f.Kind, got, c.want)
		}
	}
}

func TestNewDataValidatesPayload(t *testing.T) {
	for _, payload := range []int{-1, MaxPayload + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("payload %d did not panic", payload)
				}
			}()
			NewData(0, 1, 0, payload)
		}()
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{Data, Ack, Beacon, PSPoll, RTS, CTS, Schedule} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should render something")
	}
}

func TestTIMSetClearIndicated(t *testing.T) {
	tim := NewTIM(3)
	if tim.Any() {
		t.Error("fresh TIM indicates traffic")
	}
	tim.Set(5)
	tim.Set(12)
	if !tim.Indicated(5) || !tim.Indicated(12) || tim.Indicated(3) {
		t.Error("Indicated wrong")
	}
	if tim.Stations() != 2 {
		t.Errorf("Stations = %d, want 2", tim.Stations())
	}
	tim.Clear(5)
	if tim.Indicated(5) {
		t.Error("Clear did not clear")
	}
	if !tim.Any() {
		t.Error("Any false with one station set")
	}
}

func TestTIMNegativeStationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative station did not panic")
		}
	}()
	NewTIM(1).Set(-1)
}

func TestTIMEncodedSizePartialBitmap(t *testing.T) {
	tim := NewTIM(1)
	if got := tim.EncodedSize(); got != 5 {
		t.Errorf("empty TIM size = %d, want 5", got)
	}
	tim.Set(0)
	if got := tim.EncodedSize(); got != 5 {
		t.Errorf("one-station TIM size = %d, want 5", got)
	}
	// Stations 200..207 live in octet 25; partial bitmap still 1 octet.
	tim2 := NewTIM(1)
	tim2.Set(200)
	tim2.Set(207)
	if got := tim2.EncodedSize(); got != 5 {
		t.Errorf("high-octet TIM size = %d, want 5 (partial bitmap)", got)
	}
	// Span from octet 0 to octet 25 = 26 octets.
	tim2.Set(0)
	if got := tim2.EncodedSize(); got != 4+26 {
		t.Errorf("wide TIM size = %d, want 30", got)
	}
}

func TestTIMEncodeDecodeRoundTrip(t *testing.T) {
	tim := NewTIM(3)
	tim.DTIMCount = 2
	tim.Broadcast = true
	for _, sta := range []int{1, 9, 17, 64, 65} {
		tim.Set(sta)
	}
	dec, err := DecodeTIM(tim.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.DTIMCount != 2 || dec.DTIMPeriod != 3 || !dec.Broadcast {
		t.Errorf("header fields lost: %+v", dec)
	}
	for _, sta := range []int{1, 9, 17, 64, 65} {
		if !dec.Indicated(sta) {
			t.Errorf("station %d lost in round trip", sta)
		}
	}
	if dec.Stations() != 5 {
		t.Errorf("decoded %d stations, want 5", dec.Stations())
	}
}

func TestDecodeTIMTooShort(t *testing.T) {
	if _, err := DecodeTIM([]byte{1, 2}); err == nil {
		t.Error("short TIM decoded without error")
	}
}

// Property: encode/decode round-trips arbitrary station sets (ids bounded to
// keep octet spans reasonable).
func TestTIMRoundTripProperty(t *testing.T) {
	prop := func(stations []uint8, dtimCount uint8, bcast bool) bool {
		tim := NewTIM(4)
		tim.DTIMCount = int(dtimCount % 4)
		tim.Broadcast = bcast
		want := make(map[int]bool)
		for _, s := range stations {
			id := int(s) % 120
			tim.Set(id)
			want[id] = true
		}
		dec, err := DecodeTIM(tim.Encode())
		if err != nil {
			return false
		}
		if dec.Stations() != len(want) || dec.Broadcast != bcast ||
			dec.DTIMCount != int(dtimCount%4) {
			return false
		}
		for id := range want {
			if !dec.Indicated(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBeaconSizeGrowsWithTIM(t *testing.T) {
	tim := NewTIM(1)
	b := NewBeacon(tim)
	small := b.Size()
	tim.Set(0)
	tim.Set(100)
	if b.Size() <= small {
		t.Error("beacon size should grow with wider TIM")
	}
}
