// Package frame defines the MAC-level frame formats shared by the 802.11
// DCF/PSM, EC-MAC and PAMAS models: data frames, acknowledgements, beacons
// carrying traffic indication maps (TIM), and PS-Poll frames. Sizes follow
// 802.11b conventions so airtime computations are realistic.
package frame

import "fmt"

// Kind discriminates frame types.
type Kind int

// Frame kinds.
const (
	Data Kind = iota
	Ack
	Beacon
	PSPoll
	RTS
	CTS
	Schedule // EC-MAC schedule broadcast
)

// String names the frame kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Beacon:
		return "beacon"
	case PSPoll:
		return "ps-poll"
	case RTS:
		return "rts"
	case CTS:
		return "cts"
	case Schedule:
		return "schedule"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Wire-size constants (bytes), per 802.11b framing.
const (
	MACHeader  = 34 // 30-byte header + 4-byte FCS
	AckSize    = 14
	PSPollSize = 20
	RTSSize    = 20
	CTSSize    = 14
	BeaconBase = 50 // beacon body before the TIM element
	MaxPayload = 2304
	PLCPBytes  = 24 // long preamble + PLCP header airtime equivalent at 1 Mb/s, folded into size
)

// Frame is one MAC-layer protocol data unit.
type Frame struct {
	Kind    Kind
	From    int // station id; -1 = access point
	To      int // station id; -1 = access point, -2 = broadcast
	Seq     int
	Payload int  // application payload bytes carried
	More    bool // 802.11 "more data" bit: AP holds further buffered frames
	// TIM is attached to Beacon frames.
	TIM *TIM
}

// AP and Broadcast are sentinel addresses.
const (
	AP        = -1
	Broadcast = -2
)

// Size returns the frame's on-air size in bytes (header + body + any TIM).
func (f *Frame) Size() int {
	switch f.Kind {
	case Ack:
		return AckSize
	case PSPoll:
		return PSPollSize
	case RTS:
		return RTSSize
	case CTS:
		return CTSSize
	case Beacon:
		n := BeaconBase
		if f.TIM != nil {
			n += f.TIM.EncodedSize()
		}
		return n
	case Data, Schedule:
		return MACHeader + f.Payload
	default:
		return MACHeader + f.Payload
	}
}

// NewData builds a data frame.
func NewData(from, to, seq, payload int) *Frame {
	if payload < 0 || payload > MaxPayload {
		panic(fmt.Sprintf("frame: payload %d outside [0, %d]", payload, MaxPayload))
	}
	return &Frame{Kind: Data, From: from, To: to, Seq: seq, Payload: payload}
}

// NewAck builds an acknowledgement for the given destination.
func NewAck(from, to int) *Frame { return &Frame{Kind: Ack, From: from, To: to} }

// NewPSPoll builds a PS-Poll frame from a dozing station to the AP. The
// sequence number lets the AP suppress duplicated polls caused by MAC-level
// retransmission of the poll itself.
func NewPSPoll(from, seq int) *Frame {
	return &Frame{Kind: PSPoll, From: from, To: AP, Seq: seq}
}

// NewBeacon builds a beacon carrying the given TIM.
func NewBeacon(tim *TIM) *Frame {
	return &Frame{Kind: Beacon, From: AP, To: Broadcast, TIM: tim}
}
