package frame

import "fmt"

// TIM is the 802.11 traffic indication map: a partial virtual bitmap telling
// power-saving stations whether the AP buffers traffic for them. The paper's
// description of the PSM standard — "a device enter[s] doze mode whenever
// there is no traffic for it in the traffic indication map sent by the
// access point" — is implemented on top of this type.
type TIM struct {
	// DTIMCount counts down beacons until the next DTIM (0 = this beacon is
	// a DTIM and broadcast traffic follows).
	DTIMCount int
	// DTIMPeriod is the DTIM interval in beacons.
	DTIMPeriod int
	// Broadcast indicates buffered broadcast/multicast traffic (delivered
	// after DTIM beacons).
	Broadcast bool
	bitmap    map[int]bool
}

// NewTIM creates an empty TIM with the given DTIM period.
func NewTIM(dtimPeriod int) *TIM {
	if dtimPeriod <= 0 {
		panic(fmt.Sprintf("frame: DTIM period %d must be positive", dtimPeriod))
	}
	return &TIM{DTIMPeriod: dtimPeriod, bitmap: make(map[int]bool)}
}

// Set marks station sta as having buffered traffic.
func (t *TIM) Set(sta int) {
	if sta < 0 {
		panic("frame: TIM station ids must be non-negative")
	}
	t.bitmap[sta] = true
}

// Clear unmarks station sta.
func (t *TIM) Clear(sta int) { delete(t.bitmap, sta) }

// Indicated reports whether sta has buffered traffic per this TIM.
func (t *TIM) Indicated(sta int) bool { return t.bitmap[sta] }

// Stations returns the number of stations indicated.
func (t *TIM) Stations() int { return len(t.bitmap) }

// Any reports whether any station is indicated.
func (t *TIM) Any() bool { return len(t.bitmap) > 0 }

// maxSta returns the highest indicated station id, or -1.
func (t *TIM) maxSta() int {
	max := -1
	for sta := range t.bitmap {
		if sta > max {
			max = sta
		}
	}
	return max
}

// minSta returns the lowest indicated station id, or -1.
func (t *TIM) minSta() int {
	min := -1
	for sta := range t.bitmap {
		if min == -1 || sta < min {
			min = sta
		}
	}
	return min
}

// EncodedSize returns the on-air size of the TIM element in bytes using the
// 802.11 partial-virtual-bitmap encoding: 4 fixed bytes plus only the octet
// range [floor(min/8), floor(max/8)] of the bitmap.
func (t *TIM) EncodedSize() int {
	if len(t.bitmap) == 0 {
		return 4 + 1 // standard: at least one bitmap octet present
	}
	lo := t.minSta() / 8
	hi := t.maxSta() / 8
	return 4 + (hi - lo + 1)
}

// Encode serializes the TIM into the partial-virtual-bitmap wire format:
// [DTIMCount, DTIMPeriod, BitmapControl, N1, bitmap...]. Broadcast traffic is
// flagged in bit 0 of BitmapControl per the standard.
func (t *TIM) Encode() []byte {
	lo, hi := 0, 0
	if len(t.bitmap) > 0 {
		lo = t.minSta() / 8
		hi = t.maxSta() / 8
	}
	ctrl := byte(lo << 1) // N1: offset in octets, shifted past the bcast bit
	if t.Broadcast {
		ctrl |= 1
	}
	out := []byte{byte(t.DTIMCount), byte(t.DTIMPeriod), ctrl}
	bitmap := make([]byte, hi-lo+1)
	for sta := range t.bitmap {
		oct := sta/8 - lo
		bitmap[oct] |= 1 << (sta % 8)
	}
	return append(out, bitmap...)
}

// DecodeTIM parses the wire format produced by Encode.
func DecodeTIM(b []byte) (*TIM, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("frame: TIM too short (%d bytes)", len(b))
	}
	t := NewTIM(int(b[1]))
	t.DTIMCount = int(b[0])
	t.Broadcast = b[2]&1 != 0
	lo := int(b[2] >> 1)
	for i, oct := range b[3:] {
		for bit := 0; bit < 8; bit++ {
			if oct&(1<<bit) != 0 {
				t.Set((lo+i)*8 + bit)
			}
		}
	}
	return t, nil
}
