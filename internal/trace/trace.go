// Package trace records client power trajectories and renders the paper's
// Figure 1: a Gantt-style view with each client's data-transfer windows on
// top and its WNIC power levels beneath, demonstrating that centralized
// scheduling lets every client know exactly when to wake and when to sleep.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// PowerSample is one step of a piecewise-constant power trajectory.
type PowerSample struct {
	At    sim.Time
	Watts float64
}

// PowerTrace records a client's combined radio draw over time.
type PowerTrace struct {
	samples []PowerSample
}

// Record appends a sample; timestamps must be non-decreasing.
func (p *PowerTrace) Record(at sim.Time, watts float64) {
	if n := len(p.samples); n > 0 && at < p.samples[n-1].At {
		panic("trace: power samples out of order")
	}
	p.samples = append(p.samples, PowerSample{At: at, Watts: watts})
}

// Len returns the number of recorded samples.
func (p *PowerTrace) Len() int { return len(p.samples) }

// At returns the power level in effect at time t (0 before first sample).
func (p *PowerTrace) At(t sim.Time) float64 {
	i := sort.Search(len(p.samples), func(i int) bool { return p.samples[i].At > t })
	if i == 0 {
		return 0
	}
	return p.samples[i-1].Watts
}

// Window is a labelled activity interval (a transfer slot) on a lane.
type Window struct {
	Lane  int // client id
	Start sim.Time
	End   sim.Time
}

// Gantt renders transfer windows and power lanes as fixed-width text.
type Gantt struct {
	From, To sim.Time
	Width    int // columns
	// MaxPower scales the power glyphs; 0 auto-scales per lane.
	MaxPower float64
}

// NewGantt creates a renderer over [from, to] with the given column count.
func NewGantt(from, to sim.Time, width int) *Gantt {
	if to <= from || width <= 0 {
		panic(fmt.Sprintf("trace: bad gantt window [%v, %v] x %d", from, to, width))
	}
	return &Gantt{From: from, To: to, Width: width}
}

// colOf maps a time to a column (clamped).
func (g *Gantt) colOf(t sim.Time) int {
	frac := float64(t-g.From) / float64(g.To-g.From)
	c := int(frac * float64(g.Width))
	if c < 0 {
		c = 0
	}
	if c >= g.Width {
		c = g.Width - 1
	}
	return c
}

// TransferLane renders one client's transfer windows as a bar row.
func (g *Gantt) TransferLane(lane int, windows []Window) string {
	row := make([]byte, g.Width)
	for i := range row {
		row[i] = '.'
	}
	for _, w := range windows {
		if w.Lane != lane || w.End < g.From || w.Start > g.To {
			continue
		}
		for c := g.colOf(w.Start); c <= g.colOf(w.End); c++ {
			row[c] = '#'
		}
	}
	return string(row)
}

// powerGlyphs maps normalized power quartiles to glyphs: deep sleep, low,
// medium, high.
var powerGlyphs = []byte{'_', '-', '=', '^'}

// MaxIn returns the highest power level in effect anywhere within [t0, t1).
func (p *PowerTrace) MaxIn(t0, t1 sim.Time) float64 {
	max := p.At(t0) // level carried into the window
	i := sort.Search(len(p.samples), func(i int) bool { return p.samples[i].At >= t0 })
	for ; i < len(p.samples) && p.samples[i].At < t1; i++ {
		if p.samples[i].Watts > max {
			max = p.samples[i].Watts
		}
	}
	return max
}

// PowerLane renders one client's power trajectory. Each column shows the
// peak level within its window, so even bursts much shorter than a column
// remain visible.
func (g *Gantt) PowerLane(trace *PowerTrace) string {
	maxW := g.MaxPower
	if maxW <= 0 {
		for _, s := range trace.samples {
			if s.Watts > maxW {
				maxW = s.Watts
			}
		}
		if maxW <= 0 {
			maxW = 1
		}
	}
	row := make([]byte, g.Width)
	colDur := (g.To - g.From) / sim.Time(g.Width)
	for c := 0; c < g.Width; c++ {
		t := g.From + sim.Time(c)*colDur
		w := trace.MaxIn(t, t+colDur)
		idx := int(w / maxW * float64(len(powerGlyphs)))
		if idx >= len(powerGlyphs) {
			idx = len(powerGlyphs) - 1
		}
		if idx < 0 {
			idx = 0
		}
		row[c] = powerGlyphs[idx]
	}
	return string(row)
}

// Axis renders a time axis with tick marks every quarter.
func (g *Gantt) Axis() string {
	row := []byte(strings.Repeat(" ", g.Width))
	labels := ""
	for q := 0; q <= 4; q++ {
		t := g.From + (g.To-g.From)*sim.Time(q)/4
		col := 0
		if q > 0 {
			col = q*g.Width/4 - 1
		}
		row[col] = '|'
		labels += fmt.Sprintf("%-*s", g.Width/4, t.String())
	}
	return string(row) + "\n" + labels[:min(len(labels), g.Width+12)]
}

// Figure1 renders the full figure: per-client transfer lanes on top, power
// lanes beneath — the layout of the paper's Figure 1.
func Figure1(g *Gantt, clients []int, windows []Window, traces map[int]*PowerTrace) string {
	var b strings.Builder
	b.WriteString("Data transfer\n")
	for _, id := range clients {
		fmt.Fprintf(&b, "  client %d  %s\n", id, g.TransferLane(id, windows))
	}
	b.WriteString("Power levels\n")
	for _, id := range clients {
		tr := traces[id]
		if tr == nil {
			tr = &PowerTrace{}
		}
		fmt.Fprintf(&b, "  client %d  %s\n", id, g.PowerLane(tr))
	}
	fmt.Fprintf(&b, "%12s%s\n", "", g.Axis())
	b.WriteString("  legend: '#' transfer slot; power: '_' deep sleep, '-' low, '=' mid, '^' high\n")
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
