package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// WritePowerCSV exports a power trace as "seconds,watts" rows for external
// plotting, one row per level change plus a final row at end.
func WritePowerCSV(w io.Writer, p *PowerTrace, end sim.Time) error {
	if _, err := fmt.Fprintln(w, "seconds,watts"); err != nil {
		return err
	}
	for _, s := range p.samples {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", s.At.Seconds(), s.Watts); err != nil {
			return err
		}
	}
	if n := len(p.samples); n > 0 && p.samples[n-1].At < end {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", end.Seconds(), p.samples[n-1].Watts); err != nil {
			return err
		}
	}
	return nil
}

// WriteWindowsCSV exports transfer windows as "lane,start_s,end_s" rows,
// sorted by start time — the raw data behind a Figure 1 rendering.
func WriteWindowsCSV(w io.Writer, windows []Window) error {
	if _, err := fmt.Fprintln(w, "lane,start_s,end_s"); err != nil {
		return err
	}
	sorted := append([]Window(nil), windows...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Lane < sorted[j].Lane
	})
	for _, win := range sorted {
		if _, err := fmt.Fprintf(w, "%d,%.6f,%.6f\n",
			win.Lane, win.Start.Seconds(), win.End.Seconds()); err != nil {
			return err
		}
	}
	return nil
}
