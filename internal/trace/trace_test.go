package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestPowerTraceAt(t *testing.T) {
	var p PowerTrace
	p.Record(sim.Second, 1.0)
	p.Record(2*sim.Second, 0.1)
	if got := p.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0 (before first sample)", got)
	}
	if got := p.At(1500 * sim.Millisecond); got != 1.0 {
		t.Errorf("At(1.5s) = %v, want 1.0", got)
	}
	if got := p.At(3 * sim.Second); got != 0.1 {
		t.Errorf("At(3s) = %v, want 0.1", got)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestPowerTraceOrderEnforced(t *testing.T) {
	var p PowerTrace
	p.Record(2*sim.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order sample accepted")
		}
	}()
	p.Record(sim.Second, 1)
}

func TestTransferLane(t *testing.T) {
	g := NewGantt(0, 10*sim.Second, 20)
	lane := g.TransferLane(0, []Window{
		{Lane: 0, Start: 0, End: sim.Second},
		{Lane: 1, Start: 5 * sim.Second, End: 6 * sim.Second}, // other lane
	})
	if !strings.HasPrefix(lane, "##") {
		t.Errorf("lane = %q, want transfer at start", lane)
	}
	if strings.Contains(lane[8:], "#") {
		t.Errorf("lane = %q shows another lane's window", lane)
	}
}

func TestPowerLaneGlyphs(t *testing.T) {
	g := NewGantt(0, 10*sim.Second, 10)
	g.MaxPower = 1.0
	var p PowerTrace
	p.Record(0, 0.01)            // deep sleep
	p.Record(5*sim.Second, 0.99) // high
	lane := g.PowerLane(&p)
	if lane[0] != '_' {
		t.Errorf("lane = %q, want deep-sleep glyph first", lane)
	}
	if lane[9] != '^' {
		t.Errorf("lane = %q, want high glyph last", lane)
	}
}

func TestFigure1Renders(t *testing.T) {
	g := NewGantt(0, 30*sim.Second, 60)
	traces := map[int]*PowerTrace{0: {}, 1: {}}
	traces[0].Record(0, 0.01)
	traces[1].Record(0, 0.01)
	out := Figure1(g, []int{0, 1}, []Window{
		{Lane: 0, Start: sim.Second, End: 2 * sim.Second},
		{Lane: 1, Start: 3 * sim.Second, End: 4 * sim.Second},
	}, traces)
	for _, want := range []string{"Data transfer", "Power levels", "client 0", "client 1", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestNewGanttValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad window accepted")
		}
	}()
	NewGantt(sim.Second, sim.Second, 10)
}

func TestWritePowerCSV(t *testing.T) {
	var p PowerTrace
	p.Record(0, 1.35)
	p.Record(sim.Second, 0.045)
	var b strings.Builder
	if err := WritePowerCSV(&b, &p, 2*sim.Second); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 2 samples + closing row
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "seconds,watts" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "2.000000,0.045") {
		t.Errorf("closing row = %q", lines[3])
	}
}

func TestWriteWindowsCSV(t *testing.T) {
	var b strings.Builder
	err := WriteWindowsCSV(&b, []Window{
		{Lane: 1, Start: 2 * sim.Second, End: 3 * sim.Second},
		{Lane: 0, Start: sim.Second, End: 2 * sim.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,1.000000") {
		t.Errorf("rows not sorted by start: %q", lines[1])
	}
}

func TestPowerTraceMaxIn(t *testing.T) {
	var p PowerTrace
	p.Record(0, 0.01)
	p.Record(sim.Second, 1.4) // short spike
	p.Record(1100*sim.Millisecond, 0.01)
	// Window covering the spike sees the peak even though both edges are low.
	if got := p.MaxIn(900*sim.Millisecond, 2*sim.Second); got != 1.4 {
		t.Errorf("MaxIn = %v, want 1.4", got)
	}
	// Window before the spike sees only the base level.
	if got := p.MaxIn(0, 500*sim.Millisecond); got != 0.01 {
		t.Errorf("MaxIn = %v, want 0.01", got)
	}
}
