// Benchmark harness: one benchmark per reproduced figure/table (FIG1, FIG2,
// E3–E15) plus the design ablations. Each benchmark runs the exact code
// path behind the corresponding cmd/figgen experiment and reports the
// experiment's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every number in EXPERIMENTS.md.
package repro

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
)

func BenchmarkFigure1Schedule(b *testing.B) {
	var slots float64
	for i := 0; i < b.N; i++ {
		r := exp.Figure1(int64(i + 1))
		slots = r.Values["slots"]
	}
	b.ReportMetric(slots, "slots")
}

func BenchmarkFigure2AveragePower(b *testing.B) {
	var saving, hsW float64
	for i := 0; i < b.N; i++ {
		r := exp.Figure2(int64(i+1), 3*sim.Minute)
		saving = r.Values["saving"]
		hsW = r.Values["hsW"]
	}
	b.ReportMetric(saving*100, "%saving")
	b.ReportMetric(hsW*1000, "hotspot-mW")
}

func BenchmarkE3ListenFraction(b *testing.B) {
	var idle float64
	for i := 0; i < b.N; i++ {
		idle = exp.E3ListenFraction(int64(i + 1)).Values["idleFraction"]
	}
	b.ReportMetric(idle*100, "%idle")
}

func BenchmarkE4PSMvsCAM(b *testing.B) {
	var camW, psmW float64
	for i := 0; i < b.N; i++ {
		r := exp.E4PSMvsCAM(int64(i + 1))
		camW, psmW = r.Values["cam-0.5"], r.Values["psm100-0.5"]
	}
	b.ReportMetric(camW*1000, "cam-mW")
	b.ReportMetric(psmW*1000, "psm-mW")
}

func BenchmarkE5ECMAC(b *testing.B) {
	var ecW float64
	for i := 0; i < b.N; i++ {
		ecW = exp.E5MACComparison(int64(i + 1)).Values["ecmacW"]
	}
	b.ReportMetric(ecW*1000, "ecmac-mW")
}

func BenchmarkE6Aggregation(b *testing.B) {
	var epb float64
	for i := 0; i < b.N; i++ {
		epb = exp.E6Aggregation(int64(i + 1)).Values["epb-16"]
	}
	b.ReportMetric(epb*1e6, "uJ/bit@k16")
}

func BenchmarkE7PAMAS(b *testing.B) {
	var death float64
	for i := 0; i < b.N; i++ {
		death = exp.E7PAMAS(int64(i + 1)).Values["death-pamas"]
	}
	b.ReportMetric(death, "first-death-s")
}

func BenchmarkE8ARQvsFEC(b *testing.B) {
	var arqLow, hybHigh float64
	for i := 0; i < b.N; i++ {
		r := exp.E8ARQvsFEC(int64(i + 1))
		arqLow, hybHigh = r.Values["arq-1e-07"], r.Values["hyb-1e-04"]
	}
	b.ReportMetric(arqLow*1e6, "arq-uJ/bit@1e-7")
	b.ReportMetric(hybHigh*1e6, "hyb-uJ/bit@1e-4")
}

func BenchmarkE9AdaptiveARQ(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		acc = exp.E9AdaptiveARQ(int64(i + 1)).Values["acc-adaptive/last-state"]
	}
	b.ReportMetric(acc, "last-state-acc")
}

func BenchmarkE10SplitTCP(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r := exp.E10SplitTCP(int64(i + 1))
		gain = r.Values["split-3e-06"] / r.Values["e2e-3e-06"]
	}
	b.ReportMetric(gain, "split-gain@3e-6")
}

func BenchmarkE11DPMPolicies(b *testing.B) {
	var onJ, oracleJ float64
	for i := 0; i < b.N; i++ {
		r := exp.E11DPM(int64(i + 1))
		onJ, oracleJ = r.Values["energy-always-on"], r.Values["energy-oracle"]
	}
	b.ReportMetric(onJ, "always-on-J")
	b.ReportMetric(oracleJ, "oracle-J")
}

func BenchmarkE12ProxyAdaptation(b *testing.B) {
	var save float64
	for i := 0; i < b.N; i++ {
		r := exp.E12ProxyAdaptation(int64(i + 1))
		save = 1 - r.Values["energyAdapt"]/r.Values["energyFull"]
	}
	b.ReportMetric(save*100, "%energy-saved")
}

func BenchmarkE13Schedulers(b *testing.B) {
	var edfUnder float64
	for i := 0; i < b.N; i++ {
		edfUnder = exp.E13Schedulers(int64(i + 1)).Values["under-edf"]
	}
	b.ReportMetric(edfUnder, "edf-underruns")
}

func BenchmarkE14BurstSize(b *testing.B) {
	var w2, w40 float64
	for i := 0; i < b.N; i++ {
		r := exp.E14BurstSize(int64(i + 1))
		w2, w40 = r.Values["power-2s"], r.Values["power-40s"]
	}
	b.ReportMetric(w2*1000, "mW@2s")
	b.ReportMetric(w40*1000, "mW@40s")
}

func BenchmarkE15InterfaceSwitch(b *testing.B) {
	var switches, underruns float64
	for i := 0; i < b.N; i++ {
		r := exp.E15InterfaceSwitch(int64(i + 1))
		switches, underruns = r.Values["switches"], r.Values["underruns"]
	}
	b.ReportMetric(switches, "switches")
	b.ReportMetric(underruns, "underruns")
}

func BenchmarkE16Routing(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r := exp.E16Routing(int64(i + 1))
		gain = r.Values["death-max-min-battery"] / r.Values["death-min-energy"]
	}
	b.ReportMetric(gain, "lifetime-gain")
}

func BenchmarkE17DVS(b *testing.B) {
	var save float64
	for i := 0; i < b.N; i++ {
		r := exp.E17DVS(int64(i + 1))
		save = 1 - r.Values["cc-0.3"]/r.Values["no-0.3"]
	}
	b.ReportMetric(save*100, "%saving@30%util")
}

func BenchmarkAblationInterfaceSelection(b *testing.B) {
	var pinnedStall float64
	for i := 0; i < b.N; i++ {
		pinnedStall = exp.AblationInterfaceSelection(int64(i + 1)).Values["pinnedStall"]
	}
	b.ReportMetric(pinnedStall, "pinned-stall-s")
}

func BenchmarkAblationMargin(b *testing.B) {
	var thinUrgents float64
	for i := 0; i < b.N; i++ {
		thinUrgents = exp.AblationMargin(int64(i + 1)).Values["thinUrgents"]
	}
	b.ReportMetric(thinUrgents, "thin-urgents")
}

func BenchmarkAblationBurstAggregation(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := exp.AblationBurstAggregation(int64(i + 1))
		ratio = r.Values["smallW"] / r.Values["bigW"]
	}
	b.ReportMetric(ratio, "smallburst-power-x")
}
