// Benchmark harness: one sub-benchmark per registered experiment (FIG1,
// FIG2, E3–E17 plus the design ablations), driven entirely by the scenario
// registry — registering a new experiment in internal/exp adds its
// benchmark here with no further edits. Each sub-benchmark runs the exact
// code path behind the corresponding cmd/figgen experiment and reports the
// experiment's key figures as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every number in EXPERIMENTS.md.
package repro

import (
	"sort"
	"strings"
	"testing"

	_ "repro/internal/exp" // register the experiment catalogue
	"repro/internal/scenario"
)

func BenchmarkExperiments(b *testing.B) {
	for _, spec := range scenario.All() {
		b.Run(spec.Name, func(b *testing.B) {
			var last scenario.Result
			for i := 0; i < b.N; i++ {
				last = spec.Execute(int64(i + 1))
			}
			names := make([]string, 0, len(last.Values))
			for k := range last.Values {
				names = append(names, k)
			}
			sort.Strings(names)
			for _, k := range names {
				b.ReportMetric(last.Values[k], metricUnit(k))
			}
		})
	}
}

// metricUnit turns a Values key into a benchmark metric unit: testing
// forbids whitespace in units, and slashes read as quotients, so both are
// replaced.
func metricUnit(key string) string {
	key = strings.ReplaceAll(key, " ", "_")
	key = strings.ReplaceAll(key, "/", ".")
	return key
}

// BenchmarkRunnerMultiSeed exercises the full multi-seed aggregation path
// the CLIs use, so Runner overhead (pool scheduling + CI aggregation)
// stays visible in benchmark history.
func BenchmarkRunnerMultiSeed(b *testing.B) {
	spec, ok := scenario.Lookup("e17")
	if !ok {
		b.Fatal("e17 not registered")
	}
	seeds := scenario.Seeds(1, 4)
	r := &scenario.Runner{Parallel: 4}
	for i := 0; i < b.N; i++ {
		aggs, err := r.Run([]scenario.Spec{spec}, seeds)
		if err != nil {
			b.Fatal(err)
		}
		if len(aggs[0].Metrics) == 0 {
			b.Fatal("no metrics")
		}
	}
}
